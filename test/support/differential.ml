(* Differential harness for the netsim broadcast refactor.

   Runs the same protocol, workload and seed twice — once with the O(1)
   fan-out broadcast records ([fanout_broadcast = true], the default) and
   once with the retained per-recipient reference scheduler — and compares
   everything the simulation exposes: the trace event stream (as JSONL),
   the per-replica metrics JSON, the network totals, and every replica's
   execution/commit state.  The two paths are required to be bit-identical;
   any divergence is reported with the first mismatching trace line so the
   offending event is immediately visible. *)

module C = Marlin_core.Consensus_intf
module Cluster = Marlin_runtime.Cluster
module Netsim = Marlin_sim.Netsim
module Sim = Marlin_sim.Sim
module Obs = Marlin_obs

type faults = { drop : float; duplicate : float; extra_delay : float }

let no_faults = { drop = 0.; duplicate = 0.; extra_delay = 0. }

(* Everything observable about one run, in comparable form. *)
type outcome = {
  trace : string list;  (* Trace.to_json per event, in emission order *)
  metrics : string;  (* Run.metrics_json *)
  stats : Netsim.stats;
  executed : int list;  (* total_executed per replica *)
  heads : (int * int) list;  (* (committed height, committed count) *)
  agreement : bool;
  peak_events : int;  (* NOT compared: the refactor exists to change it *)
}

let run_once (module P : C.PROTOCOL) ~fanout ~n ~f ~clients ~seed ~until
    ~faults =
  let module Cl = Cluster.Make (P) in
  let obs = Obs.Run.create ~trace:true ~n () in
  let params =
    {
      Cluster.default_params with
      Cluster.n;
      f;
      workload = Marlin_workload.Workload.closed_loop ~clients;
      seed;
      net = { Netsim.default_config with Netsim.fanout_broadcast = fanout };
      obs = Some obs;
    }
  in
  let t = Cl.create params in
  if faults.drop > 0. then Netsim.Fault.drop_fraction (Cl.net t) ~p:faults.drop;
  if faults.duplicate > 0. then
    Netsim.Fault.duplicate (Cl.net t) ~p:faults.duplicate;
  if faults.extra_delay > 0. then
    Netsim.Fault.delay_links (Cl.net t) ~extra:faults.extra_delay;
  Cl.run t ~until;
  let heads =
    List.init n (fun i ->
        let p = Cl.protocol t i in
        ((P.committed_head p).Marlin_types.Block.height, P.committed_count p))
  in
  {
    trace = List.map Obs.Trace.to_json (Obs.Run.trace_events obs);
    metrics = Obs.Run.metrics_json obs;
    stats = Netsim.stats (Cl.net t);
    executed = List.init n (fun i -> Cl.total_executed t ~replica:i);
    heads;
    agreement = Cl.check_agreement t;
    peak_events = Sim.peak_pending (Cl.sim t);
  }

(* First index at which two string lists differ, with both sides. *)
let first_trace_diff a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<end of trace>")
    | [], y :: _ -> Some (i, "<end of trace>", y)
    | x :: a, y :: b -> if String.equal x y then go (i + 1) a b else Some (i, x, y)
  in
  go 0 a b

(* [Ok ()] when the fan-out outcome is bit-identical to the reference
   outcome, [Error msg] with a pinpointed description otherwise. *)
let compare_outcomes ~reference ~fanout =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if not (List.equal String.equal reference.trace fanout.trace) then
    match first_trace_diff reference.trace fanout.trace with
    | Some (i, r, f) ->
        err
          "trace diverges at event %d (of %d ref / %d fanout)@.  ref:    \
           %s@.  fanout: %s"
          i
          (List.length reference.trace)
          (List.length fanout.trace) r f
    | None -> err "trace lists unequal but no diff found (impossible)"
  else if not (String.equal reference.metrics fanout.metrics) then
    err "metrics JSON diverges:@.  ref:    %s@.  fanout: %s" reference.metrics
      fanout.metrics
  else if reference.stats <> fanout.stats then
    err "netsim stats diverge: ref {msgs=%d; bytes=%d; auths=%d} fanout \
         {msgs=%d; bytes=%d; auths=%d}"
      reference.stats.Netsim.messages reference.stats.Netsim.bytes
      reference.stats.Netsim.authenticators fanout.stats.Netsim.messages
      fanout.stats.Netsim.bytes fanout.stats.Netsim.authenticators
  else if not (List.equal Int.equal reference.executed fanout.executed) then
    err "executed-op counts diverge: ref [%s] fanout [%s]"
      (String.concat ";" (List.map string_of_int reference.executed))
      (String.concat ";" (List.map string_of_int fanout.executed))
  else if
    not
      (List.equal
         (fun (h1, c1) (h2, c2) -> h1 = h2 && c1 = c2)
         reference.heads fanout.heads)
  then err "committed heads diverge"
  else if reference.agreement <> fanout.agreement then
    err "agreement diverges: ref %b fanout %b" reference.agreement
      fanout.agreement
  else Ok ()

(* Run both paths and compare; returns the pair for extra assertions
   (e.g. on [peak_events]) alongside the comparison verdict. *)
let run_pair proto ~n ~f ~clients ~seed ~until ~faults =
  let reference =
    run_once proto ~fanout:false ~n ~f ~clients ~seed ~until ~faults
  in
  let fanout =
    run_once proto ~fanout:true ~n ~f ~clients ~seed ~until ~faults
  in
  (reference, fanout, compare_outcomes ~reference ~fanout)
